package nanotarget

// Determinism gate for the parallel engine: under a fixed seed, every
// pipeline must produce byte-identical output at Parallelism: 8 and
// Parallelism: 1 (the legacy sequential path). This is the repository's
// reproducibility contract — parallelism may only change wall time.

import (
	"math"
	"testing"

	"nanotarget/internal/core"
	"nanotarget/internal/rng"
	"nanotarget/internal/stats"
)

var determinismSeeds = []uint64{0, 1, 42}

func detWorld(t *testing.T, seed uint64) *World {
	t.Helper()
	w, err := NewWorld(
		WithSeed(seed),
		WithCatalogSize(4000),
		WithPanelSize(150),
		WithProfileMedian(120),
		WithActivityGrid(128),
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sameFloat treats NaN==NaN as equal (missing cells) and otherwise requires
// bit-exact equality, not approximate closeness.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestCollectParallelismIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		w := detWorld(t, seed)
		src := core.NewModelSource(w.Model())
		for _, sel := range []core.Selector{core.LeastPopular{}, core.Random{}} {
			seq, err := core.Collect(w.PanelUsers(), sel, src,
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.Collect(w.PanelUsers(), sel, src,
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.AS) != len(seq.AS) {
				t.Fatalf("seed %d %s: row counts differ", seed, sel.Name())
			}
			for ui := range seq.AS {
				for n := range seq.AS[ui] {
					if !sameFloat(seq.AS[ui][n], par.AS[ui][n]) {
						t.Fatalf("seed %d %s: AS[%d][%d] = %v sequential vs %v parallel",
							seed, sel.Name(), ui, n, seq.AS[ui][n], par.AS[ui][n])
					}
				}
			}
		}
	}
}

func TestEstimateNPParallelismIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		w := detWorld(t, seed)
		src := core.NewModelSource(w.Model())
		samples, err := core.Collect(w.PanelUsers(), core.Random{}, src,
			core.CollectConfig{Seed: rng.New(seed), Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := core.EstimateNP(samples, 0.9, core.EstimateConfig{
			BootstrapIters: 400, CILevel: 0.95, Rand: rng.New(seed), Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.EstimateNP(samples, 0.9, core.EstimateConfig{
			BootstrapIters: 400, CILevel: 0.95, Rand: rng.New(seed), Parallelism: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloat(seq.NP, par.NP) || !sameFloat(seq.CI.Lo, par.CI.Lo) ||
			!sameFloat(seq.CI.Hi, par.CI.Hi) || !sameFloat(seq.R2, par.R2) {
			t.Fatalf("seed %d: estimate diverged: sequential %+v vs parallel %+v", seed, seq, par)
		}
	}
}

func TestBootstrapParallelismIsByteIdentical(t *testing.T) {
	stat := func(idx []int) (float64, error) {
		s := 0.0
		for _, i := range idx {
			s += float64(i * i)
		}
		return s, nil
	}
	for _, seed := range determinismSeeds {
		seq, err := stats.BootstrapParallel(137, 500, 1, rng.New(seed), stat)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := stats.BootstrapParallel(137, 500, workers, rng.New(seed), stat)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(seq) {
				t.Fatalf("seed %d workers %d: %d values vs %d", seed, workers, len(par), len(seq))
			}
			for i := range seq {
				if !sameFloat(seq[i], par[i]) {
					t.Fatalf("seed %d workers %d: value %d diverged", seed, workers, i)
				}
			}
		}
	}
}

func TestNanotargetingParallelismIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a world with 22-interest profiles")
	}
	w := detWorld(t, 1)
	seq, err := w.RunNanotargeting(NanotargetingOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.RunNanotargeting(NanotargetingOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Rows(), par.Rows()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campaign row %d diverged:\nsequential %+v\nparallel   %+v", i, a[i], b[i])
		}
	}
	if seq.Successes != par.Successes || seq.TotalCostCents != par.TotalCostCents {
		t.Fatalf("aggregates diverged: %+v vs %+v", seq, par)
	}
}

func TestPolicyEvaluationParallelismIsByteIdentical(t *testing.T) {
	w := detWorld(t, 42)
	seq, err := w.EvaluatePolicies(PolicyOptions{Victims: 25, InterestCount: 12, Trials: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.EvaluatePolicies(PolicyOptions{Victims: 25, InterestCount: 12, Trials: 2, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ")
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("policy %q diverged:\nsequential %+v\nparallel   %+v", seq[i].Policy, seq[i], par[i])
		}
	}
}
