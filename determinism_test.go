package nanotarget

// Determinism gates for the execution engines: under a fixed seed, every
// pipeline must produce byte-identical output (1) at Parallelism: 8 and
// Parallelism: 1 (the legacy sequential path), and (2) with the audience
// cache on and off. This is the repository's reproducibility contract —
// parallelism and caching may only change wall time.

import (
	"math"
	"slices"
	"testing"

	"nanotarget/internal/audience"
	"nanotarget/internal/core"
	"nanotarget/internal/interest"
	"nanotarget/internal/rng"
	"nanotarget/internal/stats"
)

var determinismSeeds = []uint64{0, 1, 42}

func detWorld(t *testing.T, seed uint64) *World {
	t.Helper()
	return detWorldCache(t, seed, true)
}

// detWorldCache builds the shared small-scale test fixture (also the golden
// fixture — see golden_test.go) with an explicit audience cache setting.
// The scale options live HERE and only here: changing any of them
// invalidates every golden pin.
func detWorldCache(t *testing.T, seed uint64, cache bool) *World {
	t.Helper()
	w, err := NewWorld(
		WithSeed(seed),
		WithCatalogSize(4000),
		WithPanelSize(150),
		WithProfileMedian(120),
		WithActivityGrid(128),
		WithAudienceCache(cache),
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sameFloat treats NaN==NaN as equal (missing cells) and otherwise requires
// bit-exact equality, not approximate closeness.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestCollectParallelismIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		w := detWorld(t, seed)
		src := core.NewModelSource(w.Model())
		for _, sel := range []core.Selector{core.LeastPopular{}, core.Random{}} {
			seq, err := core.Collect(w.PanelUsers(), sel, src,
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.Collect(w.PanelUsers(), sel, src,
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.AS) != len(seq.AS) {
				t.Fatalf("seed %d %s: row counts differ", seed, sel.Name())
			}
			for ui := range seq.AS {
				for n := range seq.AS[ui] {
					if !sameFloat(seq.AS[ui][n], par.AS[ui][n]) {
						t.Fatalf("seed %d %s: AS[%d][%d] = %v sequential vs %v parallel",
							seed, sel.Name(), ui, n, seq.AS[ui][n], par.AS[ui][n])
					}
				}
			}
		}
	}
}

func TestEstimateNPParallelismIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		w := detWorld(t, seed)
		src := core.NewModelSource(w.Model())
		samples, err := core.Collect(w.PanelUsers(), core.Random{}, src,
			core.CollectConfig{Seed: rng.New(seed), Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := core.EstimateNP(samples, 0.9, core.EstimateConfig{
			BootstrapIters: 400, CILevel: 0.95, Rand: rng.New(seed), Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.EstimateNP(samples, 0.9, core.EstimateConfig{
			BootstrapIters: 400, CILevel: 0.95, Rand: rng.New(seed), Parallelism: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloat(seq.NP, par.NP) || !sameFloat(seq.CI.Lo, par.CI.Lo) ||
			!sameFloat(seq.CI.Hi, par.CI.Hi) || !sameFloat(seq.R2, par.R2) {
			t.Fatalf("seed %d: estimate diverged: sequential %+v vs parallel %+v", seed, seq, par)
		}
	}
}

func TestBootstrapParallelismIsByteIdentical(t *testing.T) {
	stat := func(idx []int) (float64, error) {
		s := 0.0
		for _, i := range idx {
			s += float64(i * i)
		}
		return s, nil
	}
	for _, seed := range determinismSeeds {
		seq, err := stats.BootstrapParallel(137, 500, 1, rng.New(seed), stat)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := stats.BootstrapParallel(137, 500, workers, rng.New(seed), stat)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(seq) {
				t.Fatalf("seed %d workers %d: %d values vs %d", seed, workers, len(par), len(seq))
			}
			for i := range seq {
				if !sameFloat(seq[i], par[i]) {
					t.Fatalf("seed %d workers %d: value %d diverged", seed, workers, i)
				}
			}
		}
	}
}

func TestNanotargetingParallelismIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a world with 22-interest profiles")
	}
	w := detWorld(t, 1)
	seq, err := w.RunNanotargeting(NanotargetingOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.RunNanotargeting(NanotargetingOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.Rows(), par.Rows()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("campaign row %d diverged:\nsequential %+v\nparallel   %+v", i, a[i], b[i])
		}
	}
	if seq.Successes != par.Successes || seq.TotalCostCents != par.TotalCostCents {
		t.Fatalf("aggregates diverged: %+v vs %+v", seq, par)
	}
}

// TestAudienceCacheCollectIsByteIdentical gates Collect and EstimateNP:
// sample tables and N_P estimates must be bit-identical with the audience
// cache on and off, for both selection strategies.
func TestAudienceCacheCollectIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		wOn := detWorldCache(t, seed, true)
		wOff := detWorldCache(t, seed, false)
		if !wOn.Audience().Enabled() || wOff.Audience().Enabled() {
			t.Fatal("cache knob did not take effect")
		}
		for _, sel := range []core.Selector{core.LeastPopular{}, core.Random{}} {
			cached, err := core.Collect(wOn.PanelUsers(), sel, core.NewEngineSource(wOn.Audience()),
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := core.Collect(wOff.PanelUsers(), sel, core.NewEngineSource(wOff.Audience()),
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(cached.AS) != len(plain.AS) {
				t.Fatalf("seed %d %s: row counts differ", seed, sel.Name())
			}
			for ui := range plain.AS {
				for n := range plain.AS[ui] {
					if !sameFloat(plain.AS[ui][n], cached.AS[ui][n]) {
						t.Fatalf("seed %d %s: AS[%d][%d] = %v uncached vs %v cached",
							seed, sel.Name(), ui, n, plain.AS[ui][n], cached.AS[ui][n])
					}
				}
			}
			est1, err := core.EstimateNP(cached, 0.9, core.EstimateConfig{
				BootstrapIters: 200, CILevel: 0.95, Rand: rng.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			est2, err := core.EstimateNP(plain, 0.9, core.EstimateConfig{
				BootstrapIters: 200, CILevel: 0.95, Rand: rng.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			if !sameFloat(est1.NP, est2.NP) || !sameFloat(est1.CI.Lo, est2.CI.Lo) ||
				!sameFloat(est1.CI.Hi, est2.CI.Hi) {
				t.Fatalf("seed %d %s: estimate diverged: cached %+v vs uncached %+v",
					seed, sel.Name(), est1, est2)
			}
		}
		if st := wOn.AudienceCacheStats(); st.Total().Hits == 0 {
			t.Fatalf("seed %d: cache saw no hits; the gate is vacuous (%+v)", seed, st)
		}
	}
}

// TestAudienceCacheNanotargetingIsByteIdentical gates RunNanotargeting:
// Table 2 must be identical with the cache on and off.
func TestAudienceCacheNanotargetingIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a world with 22-interest profiles")
	}
	for _, seed := range determinismSeeds {
		wOn := detWorldCache(t, seed, true)
		wOff := detWorldCache(t, seed, false)
		cached, err := wOn.RunNanotargeting(NanotargetingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := wOff.RunNanotargeting(NanotargetingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a, b := cached.Rows(), plain.Rows()
		if len(a) != len(b) {
			t.Fatalf("seed %d: row counts differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: campaign row %d diverged:\ncached   %+v\nuncached %+v", seed, i, a[i], b[i])
			}
		}
		if cached.Successes != plain.Successes || cached.TotalCostCents != plain.TotalCostCents {
			t.Fatalf("seed %d: aggregates diverged", seed)
		}
		if st := wOn.AudienceCacheStats(); st.Total().Hits == 0 {
			t.Fatalf("seed %d: nested campaign subsets should share cached prefixes (%+v)", seed, st)
		}
	}
}

// TestAudienceCachePolicyEvaluationIsByteIdentical gates EvaluatePolicies.
func TestAudienceCachePolicyEvaluationIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		wOn := detWorldCache(t, seed, true)
		wOff := detWorldCache(t, seed, false)
		cached, err := wOn.EvaluatePolicies(PolicyOptions{Victims: 20, InterestCount: 12, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := wOff.EvaluatePolicies(PolicyOptions{Victims: 20, InterestCount: 12, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(cached) != len(plain) {
			t.Fatalf("seed %d: outcome counts differ", seed)
		}
		for i := range plain {
			if cached[i] != plain[i] {
				t.Fatalf("seed %d: policy %q diverged:\ncached   %+v\nuncached %+v",
					seed, plain[i].Policy, cached[i], plain[i])
			}
		}
		if st := wOn.AudienceCacheStats(); st.Total().Hits == 0 {
			t.Fatalf("seed %d: policy replay should re-realize cached conjunctions (%+v)", seed, st)
		}
	}
}

// TestRowKernelIsByteIdentical gates the inclusion-row kernel: a world
// evaluating on precomputed rows (the default) must produce byte-identical
// output to a world computing exp() inline (WithRowKernel(false)), across
// the full §4 pipeline — sample collection for both selection strategies,
// N_P estimation — plus the flexible_spec union path, which is the one
// evaluation shape the audience cache never covers. This is the "hoisted,
// not reformulated" contract of internal/population/rows.go.
func TestRowKernelIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		build := func(rows bool) *World {
			w, err := NewWorld(
				WithSeed(seed),
				WithCatalogSize(4000),
				WithPanelSize(150),
				WithProfileMedian(120),
				WithActivityGrid(128),
				WithRowKernel(rows),
			)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
		wOn, wOff := build(true), build(false)
		if !wOn.Model().RowKernelEnabled() || wOff.Model().RowKernelEnabled() {
			t.Fatal("row-kernel knob did not take effect")
		}
		for _, sel := range []core.Selector{core.LeastPopular{}, core.Random{}} {
			rows, err := core.Collect(wOn.PanelUsers(), sel, core.NewEngineSource(wOn.Audience()),
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			exp, err := core.Collect(wOff.PanelUsers(), sel, core.NewEngineSource(wOff.Audience()),
				core.CollectConfig{Seed: rng.New(seed), Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows.AS) != len(exp.AS) {
				t.Fatalf("seed %d %s: row counts differ", seed, sel.Name())
			}
			for ui := range exp.AS {
				for n := range exp.AS[ui] {
					if !sameFloat(exp.AS[ui][n], rows.AS[ui][n]) {
						t.Fatalf("seed %d %s: AS[%d][%d] = %v inline-exp vs %v kernel",
							seed, sel.Name(), ui, n, exp.AS[ui][n], rows.AS[ui][n])
					}
				}
			}
			estRows, err := core.EstimateNP(rows, 0.9, core.EstimateConfig{
				BootstrapIters: 200, CILevel: 0.95, Rand: rng.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			estExp, err := core.EstimateNP(exp, 0.9, core.EstimateConfig{
				BootstrapIters: 200, CILevel: 0.95, Rand: rng.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			if !sameFloat(estRows.NP, estExp.NP) || !sameFloat(estRows.CI.Lo, estExp.CI.Lo) ||
				!sameFloat(estRows.CI.Hi, estExp.CI.Hi) {
				t.Fatalf("seed %d %s: estimate diverged: kernel %+v vs inline-exp %+v",
					seed, sel.Name(), estRows, estExp)
			}
		}
		// flexible_spec unions (mixed clause widths) evaluate through the
		// dedicated kernel restructure; gate them directly.
		r := rng.New(seed ^ 0xBEEF)
		for trial := 0; trial < 40; trial++ {
			clauses := make([][]interest.ID, 1+r.Intn(5))
			for c := range clauses {
				clause := make([]interest.ID, 1+r.Intn(4))
				for i := range clause {
					clause[i] = interest.ID(r.Intn(wOn.CatalogSize()))
				}
				clauses[c] = clause
			}
			a := wOn.Model().UnionConjunctionShare(clauses)
			b := wOff.Model().UnionConjunctionShare(clauses)
			if !sameFloat(a, b) {
				t.Fatalf("seed %d trial %d: union kernel %v != inline-exp %v", seed, trial, a, b)
			}
		}
		if n, _ := wOn.Model().RowStats(); n == 0 {
			t.Fatalf("seed %d: kernel world materialized no rows; the gate is vacuous", seed)
		}
	}
}

// TestColumnKernelIsByteIdentical gates the columnar bootstrap kernel: a
// world estimating on presorted panel columns and counting quantiles (the
// default) must produce byte-identical output to a world running the naive
// gather-copy-sort resample path (WithColumnKernel(false)) — VAS vectors at
// every study quantile, N_P point estimates and bootstrap percentile CIs,
// for both selection strategies, at workers 1 and 4. This is the "multiset
// quantile of a resample equals the quantile of its sorted expansion"
// contract of internal/core/columns.go.
func TestColumnKernelIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		build := func(kernel bool) *World {
			w, err := NewWorld(
				WithSeed(seed),
				WithCatalogSize(4000),
				WithPanelSize(150),
				WithProfileMedian(120),
				WithActivityGrid(128),
				WithColumnKernel(kernel),
			)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
		wOn, wOff := build(true), build(false)
		for _, sel := range []core.Selector{core.LeastPopular{}, core.Random{}} {
			kernel, err := core.Collect(wOn.PanelUsers(), sel, core.NewEngineSource(wOn.Audience()),
				core.CollectConfig{Seed: rng.New(seed)})
			if err != nil {
				t.Fatal(err)
			}
			naive, err := core.Collect(wOff.PanelUsers(), sel, core.NewEngineSource(wOff.Audience()),
				core.CollectConfig{Seed: rng.New(seed), DisableColumnKernel: true})
			if err != nil {
				t.Fatal(err)
			}
			if kernel.DisableColumnKernel || !naive.DisableColumnKernel {
				t.Fatal("column-kernel knob did not take effect")
			}
			for _, q := range []float64{0.5, 0.8, 0.9, 0.95} {
				a, b := kernel.VAS(q), naive.VAS(q)
				for n := range a {
					if !sameFloat(a[n], b[n]) {
						t.Fatalf("seed %d %s: VAS(%v)[%d] = %v kernel vs %v naive",
							seed, sel.Name(), q, n, a[n], b[n])
					}
				}
			}
			for _, workers := range []int{1, 4} {
				ek, err := core.EstimateNP(kernel, 0.9, core.EstimateConfig{
					BootstrapIters: 300, CILevel: 0.95, Rand: rng.New(seed), Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				en, err := core.EstimateNP(naive, 0.9, core.EstimateConfig{
					BootstrapIters: 300, CILevel: 0.95, Rand: rng.New(seed), Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !sameFloat(ek.NP, en.NP) || !sameFloat(ek.CI.Lo, en.CI.Lo) ||
					!sameFloat(ek.CI.Hi, en.CI.Hi) || !sameFloat(ek.R2, en.R2) {
					t.Fatalf("seed %d %s workers %d: estimate diverged: kernel %+v vs naive %+v",
						seed, sel.Name(), workers, ek, en)
				}
			}
			if kernel.SampleCountAt(1) != naive.SampleCountAt(1) ||
				kernel.SampleCountAt(kernel.MaxN) != naive.SampleCountAt(naive.MaxN) {
				t.Fatalf("seed %d %s: SampleCountAt diverged between index and scan", seed, sel.Name())
			}
		}
		// The World-level knob must actually thread through the façade:
		// the full §4 study (collection + point fits + bootstrap CIs for
		// both strategies and every P) run on the WithColumnKernel(true)
		// world must be byte-identical to the WithColumnKernel(false) one.
		studyOn, err := wOn.EstimateUniqueness(UniquenessOptions{BootstrapIters: 150})
		if err != nil {
			t.Fatal(err)
		}
		studyOff, err := wOff.EstimateUniqueness(UniquenessOptions{BootstrapIters: 150})
		if err != nil {
			t.Fatal(err)
		}
		a, b := studyOn.Estimates(), studyOff.Estimates()
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("seed %d: study row counts differ (%d vs %d)", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: façade study row %d diverged:\nkernel %+v\nnaive  %+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestCanonicalModeWorkersSelfConsistent gates the relaxed ModeCanonical
// contract the way the exact gates above gate bit-identity: a canonical
// engine evaluating an adversarial permuted-probe workload must return
// byte-identical shares at workers 1 and 4, across separate engine
// instances (so the property cannot lean on shared cache state), and
// byte-identical to the sorted-order model evaluation that defines the
// canonical value. The default mode remains Exact — the cache-on ≡
// cache-off gates above are unchanged and keep holding.
func TestCanonicalModeWorkersSelfConsistent(t *testing.T) {
	for _, seed := range determinismSeeds {
		w := detWorld(t, seed)
		if w.AudienceCacheMode() != audience.ModeExact {
			t.Fatal("worlds must default to the exact cache mode")
		}
		m := w.Model()
		r := rng.New(seed ^ 0xC0FFEE)
		// 30 interest sets, each probed under 6 different orderings,
		// interleaved so concurrent workers race on the same sets.
		var queries [][]interest.ID
		for s := 0; s < 30; s++ {
			n := 3 + r.Intn(10)
			base := make([]interest.ID, n)
			for i := range base {
				base[i] = interest.ID(r.Intn(m.Catalog().Len()))
			}
			for p := 0; p < 6; p++ {
				perm := append([]interest.ID{}, base...)
				r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
				queries = append(queries, perm)
			}
		}
		var baseline []float64
		for _, workers := range []int{1, 4} {
			eng := audience.Canonical(m) // fresh engine per worker count
			out := eng.EvalBatch(queries, workers)
			if baseline == nil {
				baseline = out
				// The canonical value is defined as the exact share of the
				// sorted ordering; check it for every query once.
				for qi, q := range queries {
					sorted := append([]interest.ID{}, q...)
					slices.Sort(sorted)
					if want := m.ConjunctionShare(sorted); !sameFloat(out[qi], want) {
						t.Fatalf("seed %d query %d: canonical %v != sorted-order model %v",
							seed, qi, out[qi], want)
					}
				}
				continue
			}
			for qi := range baseline {
				if !sameFloat(out[qi], baseline[qi]) {
					t.Fatalf("seed %d query %d: workers=4 %v != workers=1 %v",
						seed, qi, out[qi], baseline[qi])
				}
			}
		}
	}
}

// TestGroupAnalysisParallelismIsByteIdentical gates the Appendix C group
// path: RunGroupAnalysis at workers 1 and 4 must produce byte-identical
// estimates for every (group, strategy) cell — each job derives its random
// streams from its own (group, selector) labels, never execution order — in
// both the group-conditional default and the legacy worldwide mode.
func TestGroupAnalysisParallelismIsByteIdentical(t *testing.T) {
	for _, seed := range determinismSeeds {
		w := detWorld(t, seed)
		for _, worldwide := range []bool{false, true} {
			run := func(workers int) []core.GroupResult {
				res, err := core.RunGroupAnalysis(w.PanelUsers(), core.NewEngineSource(w.Audience()),
					core.GroupConfig{
						Groups:             core.GenderGroups(),
						Selectors:          []core.Selector{core.LeastPopular{}, core.Random{}},
						P:                  0.9,
						BootstrapIters:     150,
						Rand:               rng.New(seed),
						Parallelism:        workers,
						WorldwideAudiences: worldwide,
					})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq, par := run(1), run(4)
			if len(seq) != len(par) {
				t.Fatalf("seed %d worldwide=%v: row counts differ", seed, worldwide)
			}
			for i := range seq {
				a, b := seq[i], par[i]
				if a.Label != b.Label || a.Strategy != b.Strategy || a.Users != b.Users {
					t.Fatalf("seed %d worldwide=%v: row %d identity diverged: %+v vs %+v",
						seed, worldwide, i, a, b)
				}
				if !sameFloat(a.Estimate.NP, b.Estimate.NP) ||
					!sameFloat(a.Estimate.CI.Lo, b.Estimate.CI.Lo) ||
					!sameFloat(a.Estimate.CI.Hi, b.Estimate.CI.Hi) ||
					!sameFloat(a.Estimate.R2, b.Estimate.R2) {
					t.Fatalf("seed %d worldwide=%v: %s/%s diverged: sequential %+v vs parallel %+v",
						seed, worldwide, a.Label, a.Strategy, a.Estimate, b.Estimate)
				}
			}
		}
	}
}

func TestPolicyEvaluationParallelismIsByteIdentical(t *testing.T) {
	w := detWorld(t, 42)
	seq, err := w.EvaluatePolicies(PolicyOptions{Victims: 25, InterestCount: 12, Trials: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.EvaluatePolicies(PolicyOptions{Victims: 25, InterestCount: 12, Trials: 2, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ")
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("policy %q diverged:\nsequential %+v\nparallel   %+v", seq[i].Policy, seq[i], par[i])
		}
	}
}
