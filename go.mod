module nanotarget

go 1.24
