package nanotarget

// Integration tests: cross-module properties that no single package can
// check — the HTTP Ads-API path must agree with the in-process audience
// oracle, the estimator must survive the platform's higher reach floors
// (§4.1's robustness claim), and hardening a profile via the FDVT defense
// must measurably reduce attack success.

import (
	"math"
	"net/http/httptest"
	"testing"

	"nanotarget/internal/adsapi"
	"nanotarget/internal/core"
	"nanotarget/internal/interest"
	"nanotarget/internal/population"
	"nanotarget/internal/rng"
)

// TestHTTPStudyMatchesInProcess runs the §4 collection through the simulated
// Marketing API over real HTTP and verifies every audience sample equals the
// in-process model source — the paper's pipeline (API → quantiles → fit)
// with the network in the loop.
func TestHTTPStudyMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP study in -short mode")
	}
	w := demoWorld(t)
	srv, err := adsapi.NewServer(adsapi.ServerConfig{Model: w.Model()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := adsapi.NewClient(adsapi.ClientConfig{BaseURL: ts.URL, AccountID: "9"})
	if err != nil {
		t.Fatal(err)
	}
	// The 2017 API required explicit locations; use the top-50 proxy "ES"
	// worldwide equivalence is not needed — both sources use one filter.
	httpSrc := &adsapi.Source{
		Client:   client,
		Geo:      adsapi.GeoLocations{Countries: []string{"ES"}},
		MinReach: adsapi.Era2017.MinReach,
	}
	modelSrc := core.NewModelSource(w.Model())
	modelSrc.Filter.Countries = []string{"ES"}

	users := w.PanelUsers()[:25]
	viaHTTP, err := core.Collect(users, core.Random{}, wrapWithCatalog{httpSrc, w}, core.CollectConfig{
		MaxN: 10,
		Seed: rng.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	viaModel, err := core.Collect(users, core.Random{}, modelSrc, core.CollectConfig{
		MaxN: 10,
		Seed: rng.New(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := range viaHTTP.AS {
		for n := range viaHTTP.AS[u] {
			a, b := viaHTTP.AS[u][n], viaModel.AS[u][n]
			if math.IsNaN(a) != math.IsNaN(b) {
				t.Fatalf("user %d n %d: missing-sample mismatch", u, n+1)
			}
			if !math.IsNaN(a) && a != b {
				t.Fatalf("user %d n %d: HTTP %v != model %v", u, n+1, a, b)
			}
		}
	}
}

// wrapWithCatalog gives the HTTP source a catalog so selectors that need
// shares (LP) would also work; Random ignores it.
type wrapWithCatalog struct {
	*adsapi.Source
	w *World
}

func (s wrapWithCatalog) Catalog() *interest.Catalog { return s.w.Model().Catalog() }

// TestFloorRobustness supports §4.1's claim that the method "can still be
// applied for the current higher limit of 1,000 users": N_P estimated under
// a floor of 1000 must stay within a factor of two of the floor-20 estimate.
func TestFloorRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("floor robustness in -short mode")
	}
	w := demoWorld(t)
	estimate := func(floor int64) float64 {
		src := core.NewModelSource(w.Model())
		src.MinReach = floor
		samples, err := core.Collect(w.PanelUsers(), core.Random{}, src,
			core.CollectConfig{Seed: rng.New(7)})
		if err != nil {
			t.Fatal(err)
		}
		fit, err := core.FitVAS(samples.VAS(0.9), samples.FloorValue)
		if err != nil {
			t.Fatal(err)
		}
		return fit.NP
	}
	np20 := estimate(20)
	np1000 := estimate(1000)
	if np20 <= 0 || np1000 <= 0 {
		t.Fatalf("degenerate estimates: %v %v", np20, np1000)
	}
	ratio := np1000 / np20
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("floor-1000 estimate %v too far from floor-20 estimate %v", np1000, np20)
	}
}

// TestHardeningReducesAttack closes the defense loop: after removing red and
// orange interests (§6), a fixed-budget random-interest attack must succeed
// no more often than before.
func TestHardeningReducesAttack(t *testing.T) {
	w := demoWorld(t)
	const victim = 7
	const trials = 30

	successRate := func() float64 {
		succ := 0
		u := w.PanelUsers()[victim]
		if len(u.Interests) < 15 {
			t.Skip("victim profile too small for the attack budget")
		}
		for trial := 0; trial < trials; trial++ {
			r := w.root.Derive("harden").Derive(string(rune('a' + trial)))
			ids := core.Random{}.Select(u, w.Model().Catalog(), 15, r)
			if w.Model().RealizeAudience(population.DemoFilter{}, ids, r) == 1 {
				succ++
			}
		}
		return float64(succ) / trials
	}
	before := successRate()
	if _, err := w.RemoveRiskyInterests(victim, "yellow"); err != nil {
		t.Fatal(err)
	}
	after := successRate()
	if after > before {
		t.Fatalf("hardening increased attack success: %v -> %v", before, after)
	}
}

// TestMostPopularAblation verifies the MP baseline: combining a user's most
// popular interests must require far more interests for uniqueness than LP.
func TestMostPopularAblation(t *testing.T) {
	w := demoWorld(t)
	src := core.NewModelSource(w.Model())
	collect := func(sel core.Selector) float64 {
		samples, err := core.Collect(w.PanelUsers(), sel, src, core.CollectConfig{Seed: rng.New(5)})
		if err != nil {
			t.Fatal(err)
		}
		vas := samples.VAS(0.5)
		// Compare audience size at N=10 — MP should retain a vastly larger
		// audience than LP.
		return vas[9]
	}
	lp := collect(core.LeastPopular{})
	mp := collect(core.MostPopular{})
	if mp < lp*10 {
		t.Fatalf("MP audience at N=10 (%v) should dwarf LP (%v)", mp, lp)
	}
}
