// Package nanotarget reproduces "Unique on Facebook: Formulation and
// Evidence of (Nano)targeting Individual Users with non-PII Data"
// (González-Cabañas et al., ACM IMC 2021) as a self-contained simulation
// library.
//
// The package is the public facade over the repository's substrates
// (synthetic Facebook-scale population, interest ecosystem, Marketing-API
// simulator, FDVT panel, campaign delivery engine). A World bundles a
// calibrated population model and a research panel; its methods reproduce
// the paper's analyses:
//
//   - EstimateUniqueness — the §4 model: how many interests (least popular
//     or random) make a user unique with probability P (Table 1, Figs 3–5);
//   - RunNanotargeting — the §5 experiment: nested random-interest
//     campaigns against consenting targets, validated with the paper's
//     three success conditions (Table 2);
//   - InterestRisk / RemoveRiskyInterests — the §6 FDVT defense;
//   - EvaluatePolicies — the §8.3 platform countermeasures.
//
// Everything is deterministic under a fixed seed. See DESIGN.md for the
// modeling substitutions and EXPERIMENTS.md for paper-vs-measured results.
package nanotarget

import (
	"errors"
	"fmt"
	"io"
	"math"

	"nanotarget/internal/audience"
	"nanotarget/internal/core"
	"nanotarget/internal/fdvt"
	"nanotarget/internal/interest"
	"nanotarget/internal/population"
	"nanotarget/internal/rng"
	"nanotarget/internal/worldcfg"
)

// World is a calibrated synthetic Facebook with a research panel.
type World struct {
	model           *population.Model
	audience        *audience.Engine
	panel           *fdvt.Panel
	root            *rng.Rand
	parallelism     int
	columnKernelOff bool
}

// WorldConfig is the complete, grouped world-construction configuration:
// PopulationParams (seed, catalog, user base, panel), CacheParams (the
// audience-query cache), KernelParams (the two evaluation kernels) and the
// Parallelism knob. It is shared — by alias — with the serving tier
// (internal/serving builds every shard from the same struct) and the cmd
// flag surface (internal/cliflags registers flags straight into it). Start
// from DefaultWorldConfig and adjust fields, or use the With* options, which
// are thin adapters over the same struct.
type WorldConfig = worldcfg.Config

// PopulationParams groups the synthetic-population knobs of a WorldConfig.
type PopulationParams = worldcfg.PopulationParams

// CacheParams groups the audience-cache knobs of a WorldConfig.
type CacheParams = worldcfg.CacheParams

// KernelParams groups the evaluation-kernel toggles of a WorldConfig.
type KernelParams = worldcfg.KernelParams

// DefaultWorldConfig returns the paper's full-scale configuration — the
// defaults NewWorld applies before its options.
func DefaultWorldConfig() WorldConfig { return worldcfg.Default() }

// Option customizes world construction by editing a WorldConfig.
type Option func(*WorldConfig)

// WithSeed fixes the master seed (default 1). Identical seeds produce
// bit-identical worlds, panels, studies and experiments.
func WithSeed(seed uint64) Option { return func(c *WorldConfig) { c.Population.Seed = seed } }

// WithCatalogSize sets the number of interests (default 98,982, the paper's
// dataset). Smaller catalogs build faster but shift uniqueness downward.
func WithCatalogSize(n int) Option { return func(c *WorldConfig) { c.Population.CatalogSize = n } }

// WithPopulation sets the modeled user-base size (default 1.5e9, the
// paper's 2017 top-50-country base; the 2020 experiment used 2.8e9).
func WithPopulation(n int64) Option { return func(c *WorldConfig) { c.Population.Population = n } }

// WithActivitySigma overrides the calibrated activity spread.
func WithActivitySigma(sigma float64) Option {
	return func(c *WorldConfig) { c.Population.ActivitySigma = sigma }
}

// WithActivityGrid sets the quadrature resolution (default 512).
func WithActivityGrid(n int) Option { return func(c *WorldConfig) { c.Population.ActivityGrid = n } }

// WithPanelSize sets the FDVT panel size (default 2,390).
func WithPanelSize(n int) Option { return func(c *WorldConfig) { c.Population.PanelSize = n } }

// WithProfileMedian sets the median interests-per-panel-user (default 426).
// Scale this down together with WithCatalogSize for fast demo worlds.
func WithProfileMedian(m float64) Option {
	return func(c *WorldConfig) { c.Population.ProfileMedian = m }
}

// WithAudienceCache toggles the shared audience-query cache (default on).
// Off reproduces the pre-engine behaviour: every audience evaluation
// recomputes the full activity-grid product. Results are byte-identical
// either way under a fixed seed (the engine's determinism contract, gated
// by determinism_test.go); only wall time changes.
func WithAudienceCache(on bool) Option { return func(c *WorldConfig) { c.Cache.Disabled = !on } }

// WithAudienceCacheCapacity sets how many conjunction prefixes the audience
// cache retains (default audience.DefaultCapacity). Each entry holds one
// survivor vector of ActivityGrid float64s.
func WithAudienceCacheCapacity(n int) Option {
	return func(c *WorldConfig) { c.Cache.Capacity = n }
}

// WithAudienceCacheMode selects the audience cache contract (default
// audience.ModeExact: every cached result bit-identical to an uncached
// evaluation of the same ordered query). audience.ModeCanonical adds the
// sort-canonicalized set-level cache — permuted re-probes of one interest
// set hit a single entry — at the price of a documented relative error
// bound (audience.MaxCanonicalRelativeError) against the exact path. See
// the audience package docs for when each contract is appropriate.
func WithAudienceCacheMode(m audience.Mode) Option {
	return func(c *WorldConfig) { c.Cache.Mode = m }
}

// WithRowKernel toggles the population model's precomputed inclusion-row
// kernel (default on). The kernel hoists the per-grid-point exp() of every
// audience evaluation into lazily materialized, interned per-interest rows,
// turning cold conjunction and flexible_spec-union evaluation into
// contiguous multiply loops. Results are bit-identical either way under a
// fixed seed (the kernel hoists the exact inline expressions — gated in
// determinism_test.go); only wall time and row-table memory
// (ActivityGrid × 8 bytes per touched interest) change.
func WithRowKernel(on bool) Option {
	return func(c *WorldConfig) { c.Kernels.DisableRowKernel = !on }
}

// WithColumnKernel toggles the estimator's presorted columnar bootstrap
// kernel (default on). The kernel presorts each combination size's panel
// column once and turns every bootstrap resample's quantile into a
// sort-free counting walk (internal/core/columns.go), so a 10k-iteration
// EstimateNP never sorts. Results are bit-identical either way under a
// fixed seed — the kernel selects the exact order statistics the naive
// sort would have and applies the same interpolation arithmetic (gated in
// determinism_test.go); only wall time and the column-index memory
// (12 bytes per collected sample) change.
func WithColumnKernel(on bool) Option {
	return func(c *WorldConfig) { c.Kernels.DisableColumnKernel = !on }
}

// WithParallelism sets the worker count used by every study and experiment
// the world runs (default 0 = runtime.GOMAXPROCS(0), i.e. one worker per
// core; 1 = sequential execution on the caller's goroutine). Results are
// byte-identical for any value under a fixed seed: each task derives its
// random stream from the task's stable identity (user, bootstrap iteration,
// campaign creative), never from execution order.
func WithParallelism(n int) Option { return func(c *WorldConfig) { c.Parallelism = n } }

// NewWorld builds a calibrated world and panel. With default options this
// reproduces the paper's full-scale setting (≈5s of construction); examples
// use smaller options. It is DefaultWorldConfig + opts fed to
// NewWorldFromConfig.
func NewWorld(opts ...Option) (*World, error) {
	cfg := DefaultWorldConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewWorldFromConfig(cfg)
}

// NewWorldFromConfig builds a calibrated world and panel from an explicit
// configuration — the constructor behind NewWorld, exposed for callers that
// assemble a WorldConfig directly (internal/cliflags-driven tools, the
// serving tier's shard builder). Identical configs produce bit-identical
// worlds.
func NewWorldFromConfig(cfg WorldConfig) (*World, error) {
	root := cfg.Root()
	cat, err := cfg.BuildCatalog()
	if err != nil {
		return nil, fmt.Errorf("nanotarget: %w", err)
	}
	model, err := cfg.BuildModel(cat, 0)
	if err != nil {
		return nil, fmt.Errorf("nanotarget: %w", err)
	}

	fcfg := fdvt.DefaultPanelConfig(model)
	fcfg.Size = cfg.Population.PanelSize
	fcfg.ProfileMedian = cfg.Population.ProfileMedian
	// Profiles cannot exceed the catalog; keep the clamp meaningful for
	// small demo catalogs.
	if fcfg.ProfileMax > float64(cat.Len()) {
		fcfg.ProfileMax = float64(cat.Len())
	}
	panel, err := fdvt.BuildPanel(fcfg, root.Derive("panel"))
	if err != nil {
		return nil, fmt.Errorf("nanotarget: building panel: %w", err)
	}
	return &World{
		model:           model,
		audience:        cfg.NewEngine(model),
		panel:           panel,
		root:            root,
		parallelism:     cfg.Parallelism,
		columnKernelOff: cfg.Kernels.DisableColumnKernel,
	}, nil
}

// Parallelism returns the world's worker count knob (0 = one per core).
func (w *World) Parallelism() int { return w.parallelism }

// workers resolves a per-call override against the world default: 0 keeps
// the world's knob, anything else (including 1 = sequential) wins.
func (w *World) workers(override int) int {
	if override != 0 {
		return override
	}
	return w.parallelism
}

// PanelSize returns the number of panel users.
func (w *World) PanelSize() int { return len(w.panel.Users) }

// Population returns the modeled user-base size.
func (w *World) Population() int64 { return w.model.Population() }

// CatalogSize returns the number of interests in the ecosystem.
func (w *World) CatalogSize() int { return w.model.Catalog().Len() }

// DescribePanel renders the §3-style dataset summary.
func (w *World) DescribePanel() string { return w.panel.Describe().String() }

// Model exposes the underlying population model for advanced, in-module use
// (cmd tools and benchmarks); library consumers should prefer the World
// methods.
func (w *World) Model() *population.Model { return w.model }

// Audience exposes the shared audience-query engine every study and
// experiment the world runs evaluates through.
func (w *World) Audience() *audience.Engine { return w.audience }

// AudienceCacheStats snapshots the per-level audience cache counters (zero
// value when the cache is disabled via WithAudienceCache(false)).
func (w *World) AudienceCacheStats() audience.Stats { return w.audience.Stats() }

// AudienceCacheMode reports the cache contract the world was built with.
func (w *World) AudienceCacheMode() audience.Mode { return w.audience.Mode() }

// WarmAudienceRows materializes the full inclusion-row table up front
// (population.Model.WarmAllRows) so no audience evaluation pays first-touch
// exp() cost — the serving-deployment trade documented in
// internal/population/rows.go: catalog × grid × 8 bytes of memory (~400 MiB
// at the full paper scale, ~80 MiB for a 20k-interest catalog at the default
// 512-point grid). No-op when the kernel is off (WithRowKernel(false)).
func (w *World) WarmAudienceRows() { w.model.WarmAllRows() }

// PanelUsers exposes the panel for advanced, in-module use.
func (w *World) PanelUsers() []*population.User { return w.panel.Users }

// InterestInfo describes one catalog interest.
type InterestInfo struct {
	Name     string
	Category string
	// AudienceSize is the worldwide audience (users holding the interest).
	AudienceSize int64
}

// SearchInterests finds interests by (case-insensitive) name substring.
func (w *World) SearchInterests(query string, limit int) []InterestInfo {
	var out []InterestInfo
	for _, in := range w.model.Catalog().Search(query, limit) {
		out = append(out, InterestInfo{
			Name:         in.Name,
			Category:     in.Category,
			AudienceSize: w.model.Catalog().AudienceSize(in.ID, w.model.Population()),
		})
	}
	return out
}

// PotentialReach returns the floored Potential Reach of an interest
// conjunction given by display names, like an Ads-Manager query.
func (w *World) PotentialReach(interestNames []string) (int64, error) {
	ids, err := w.resolve(interestNames)
	if err != nil {
		return 0, err
	}
	src := core.NewEngineSource(w.audience)
	return src.PotentialReach(ids)
}

// PotentialReachBatch evaluates many conjunctions (each a list of interest
// display names) in one call, fanning out over the world's parallelism knob
// and sharing the audience cache. Results are in input order.
func (w *World) PotentialReachBatch(batches [][]string) ([]int64, error) {
	src := core.NewEngineSource(w.audience)
	specs := make([][]interest.ID, len(batches))
	for i, names := range batches {
		ids, err := w.resolve(names)
		if err != nil {
			return nil, err
		}
		specs[i] = ids
	}
	out := make([]int64, len(specs))
	for i, p := range w.audience.EvalBatch(specs, w.parallelism) {
		out[i] = src.ClampConditional(p)
	}
	return out, nil
}

// RandomInterestsOf simulates attacker knowledge: n interests of panel user
// `panelIndex`, drawn uniformly from their profile. Deterministic per
// (world seed, panelIndex, n, draw).
func (w *World) RandomInterestsOf(panelIndex, n int, draw uint64) ([]string, error) {
	u, err := w.panelUser(panelIndex)
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > len(u.Interests) {
		return nil, fmt.Errorf("nanotarget: user %d has %d interests; cannot draw %d",
			panelIndex, len(u.Interests), n)
	}
	r := w.root.Derive(fmt.Sprintf("known/%d/%d/%d", panelIndex, n, draw))
	ids := core.Random{}.Select(u, w.model.Catalog(), n, r)
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = w.model.Catalog().MustGet(id).Name
	}
	return names, nil
}

func (w *World) panelUser(i int) (*population.User, error) {
	if i < 0 || i >= len(w.panel.Users) {
		return nil, fmt.Errorf("nanotarget: panel index %d out of range [0,%d)", i, len(w.panel.Users))
	}
	return w.panel.Users[i], nil
}

func (w *World) resolve(names []string) ([]interest.ID, error) {
	ids := make([]interest.ID, 0, len(names))
	for _, n := range names {
		in, ok := w.model.Catalog().ByName(n)
		if !ok {
			return nil, fmt.Errorf("nanotarget: unknown interest %q", n)
		}
		ids = append(ids, in.ID)
	}
	return ids, nil
}

// --- Uniqueness study (§4) ---

// UniquenessOptions configures EstimateUniqueness.
type UniquenessOptions struct {
	// Ps are the uniqueness probabilities (default: 0.5, 0.8, 0.9, 0.95).
	Ps []float64
	// BootstrapIters per estimate (default 1000; the paper used 10,000 —
	// pass that for publication-grade CIs).
	BootstrapIters int
	// Strategies to evaluate: "LP", "R" (default both) and optionally "MP".
	Strategies []string
	// Parallelism overrides the world's worker knob for this study
	// (0 = world default, 1 = sequential). The estimates are identical for
	// any value; only wall time changes.
	Parallelism int
}

// UniquenessEstimate is one row of Table 1.
type UniquenessEstimate struct {
	// Strategy is "LP" (least popular) or "R" (random).
	Strategy string
	// P is the uniqueness probability.
	P float64
	// NP is the estimated number of interests for uniqueness.
	NP float64
	// CILo and CIHi bound the 95% bootstrap confidence interval.
	CILo, CIHi float64
	// R2 is the goodness of the log–log fit.
	R2 float64
}

// VASPoint is one point of a VAS(Q) curve (Figs 3–5).
type VASPoint struct {
	// N is the number of interests in the conjunction.
	N int
	// AudienceSize is AS(Q,N), the per-N audience-size quantile.
	AudienceSize float64
}

// UniquenessStudy holds the estimates and the underlying curves.
type UniquenessStudy struct {
	rows    []UniquenessEstimate
	samples map[string]*core.Samples
}

// Estimates returns the Table 1 rows.
func (s *UniquenessStudy) Estimates() []UniquenessEstimate {
	out := make([]UniquenessEstimate, len(s.rows))
	copy(out, s.rows)
	return out
}

// Estimate returns the row for a strategy and P.
func (s *UniquenessStudy) Estimate(strategy string, p float64) (UniquenessEstimate, error) {
	for _, r := range s.rows {
		if r.Strategy == strategy && math.Abs(r.P-p) < 1e-9 {
			return r, nil
		}
	}
	return UniquenessEstimate{}, fmt.Errorf("nanotarget: no estimate for %s P=%v", strategy, p)
}

// VAS returns the VAS(Q) curve for a strategy at quantile q (q = P).
func (s *UniquenessStudy) VAS(strategy string, q float64) ([]VASPoint, error) {
	samples, ok := s.samples[strategy]
	if !ok {
		return nil, fmt.Errorf("nanotarget: strategy %q not in study", strategy)
	}
	vas := samples.VAS(q)
	out := make([]VASPoint, 0, len(vas))
	for i, v := range vas {
		if math.IsNaN(v) {
			break
		}
		out = append(out, VASPoint{N: i + 1, AudienceSize: v})
	}
	return out, nil
}

// EstimateUniqueness runs the §4 study on the world's panel.
func (w *World) EstimateUniqueness(opts UniquenessOptions) (*UniquenessStudy, error) {
	if len(opts.Ps) == 0 {
		opts.Ps = []float64{0.5, 0.8, 0.9, 0.95}
	}
	if opts.BootstrapIters <= 0 {
		opts.BootstrapIters = 1000
	}
	if len(opts.Strategies) == 0 {
		opts.Strategies = []string{"LP", "R"}
	}
	var selectors []core.Selector
	for _, s := range opts.Strategies {
		switch s {
		case "LP":
			selectors = append(selectors, core.LeastPopular{})
		case "R":
			selectors = append(selectors, core.Random{})
		case "MP":
			selectors = append(selectors, core.MostPopular{})
		default:
			return nil, fmt.Errorf("nanotarget: unknown strategy %q", s)
		}
	}
	cfg := core.StudyConfig{
		Ps:                  opts.Ps,
		Selectors:           selectors,
		MaxN:                core.MaxCombinationInterests,
		BootstrapIters:      opts.BootstrapIters,
		CILevel:             0.95,
		Rand:                w.root.Derive("uniqueness"),
		Parallelism:         w.workers(opts.Parallelism),
		DisableColumnKernel: w.columnKernelOff,
	}
	res, err := core.RunStudy(w.panel.Users, core.NewEngineSource(w.audience), cfg)
	if err != nil {
		return nil, err
	}
	study := &UniquenessStudy{samples: res.Samples}
	for _, row := range res.Rows {
		e := row.Estimate
		study.rows = append(study.rows, UniquenessEstimate{
			Strategy: row.Strategy,
			P:        e.P,
			NP:       e.NP,
			CILo:     e.CI.Lo,
			CIHi:     e.CI.Hi,
			R2:       e.R2,
		})
	}
	return study, nil
}

// GroupUniqueness runs the Appendix C demographic analysis at probability p
// (the paper uses 0.9) and returns one estimate per (group, strategy).
type GroupEstimate struct {
	Group    string
	Strategy string
	Users    int
	Estimate UniquenessEstimate
}

// Grouping selects the demographic dimension of the Appendix C analysis.
type Grouping int

// Supported groupings (Figs 8, 9 and 10).
const (
	ByGender Grouping = iota
	ByAge
	ByCountry
)

// GroupUniquenessOptions configures GroupUniquenessWithOptions.
type GroupUniquenessOptions struct {
	// P is the uniqueness probability (default 0.9, as in the paper).
	P float64
	// BootstrapIters per estimate (default 500).
	BootstrapIters int
	// WorldwideAudiences reproduces the legacy behaviour for comparison
	// figures: the panel is still subset per group, but every audience query
	// stays worldwide. The default (false) conditions each group's audiences
	// on the group's own demographic filter through the audience engine's
	// cached demo level — the Appendix C semantics.
	WorldwideAudiences bool
	// Parallelism overrides the world's worker knob for this analysis
	// (0 = world default, 1 = sequential); results are byte-identical for
	// any value.
	Parallelism int
}

// GroupUniqueness estimates N_P per demographic group with the conditional
// (group-filtered) audience semantics and default options.
func (w *World) GroupUniqueness(g Grouping, p float64, bootstrapIters int) ([]GroupEstimate, error) {
	return w.GroupUniquenessWithOptions(g, GroupUniquenessOptions{P: p, BootstrapIters: bootstrapIters})
}

// GroupUniquenessWithOptions estimates N_P per demographic group.
func (w *World) GroupUniquenessWithOptions(g Grouping, opts GroupUniquenessOptions) ([]GroupEstimate, error) {
	var groups []core.GroupFilter
	switch g {
	case ByGender:
		groups = core.GenderGroups()
	case ByAge:
		groups = core.AgeGroups()
	case ByCountry:
		groups = core.CountryGroups()
	default:
		return nil, errors.New("nanotarget: unknown grouping")
	}
	if opts.P <= 0 || opts.P >= 1 {
		opts.P = 0.9
	}
	if opts.BootstrapIters <= 0 {
		opts.BootstrapIters = 500
	}
	res, err := core.RunGroupAnalysis(w.panel.Users, core.NewEngineSource(w.audience), core.GroupConfig{
		Groups:              groups,
		Selectors:           []core.Selector{core.LeastPopular{}, core.Random{}},
		P:                   opts.P,
		BootstrapIters:      opts.BootstrapIters,
		Rand:                w.root.Derive("groups"),
		Parallelism:         w.workers(opts.Parallelism),
		DisableColumnKernel: w.columnKernelOff,
		WorldwideAudiences:  opts.WorldwideAudiences,
	})
	if err != nil {
		return nil, err
	}
	out := make([]GroupEstimate, 0, len(res))
	for _, r := range res {
		out = append(out, GroupEstimate{
			Group:    r.Label,
			Strategy: r.Strategy,
			Users:    r.Users,
			Estimate: UniquenessEstimate{
				Strategy: r.Strategy,
				P:        r.Estimate.P,
				NP:       r.Estimate.NP,
				CILo:     r.Estimate.CI.Lo,
				CIHi:     r.Estimate.CI.Hi,
				R2:       r.Estimate.R2,
			},
		})
	}
	return out, nil
}

// DemographicBoost quantifies the paper's §9 future-work conjecture: how
// many fewer random interests does an attacker need when they also target
// the victim's known demographics (country and/or gender and/or age)?
type DemographicBoost struct {
	// P is the uniqueness probability evaluated.
	P float64
	// InterestOnly is N_P from interests alone.
	InterestOnly float64
	// WithDemographics is N_P when demographics narrow the base first.
	WithDemographics float64
	// Saved is the attacker's knowledge discount in interests.
	Saved float64
}

// DemographicKnowledgeOptions selects what the attacker knows.
type DemographicKnowledgeOptions struct {
	Country  bool
	Gender   bool
	AgeYears bool
	// AgeSlack widens the age targeting (0 = exact year).
	AgeSlack int
	// P is the uniqueness probability (default 0.9).
	P float64
	// BootstrapIters per estimate (default 300).
	BootstrapIters int
}

// EstimateDemographicBoost runs the §9 future-work study.
func (w *World) EstimateDemographicBoost(opts DemographicKnowledgeOptions) (DemographicBoost, error) {
	if opts.P <= 0 || opts.P >= 1 {
		opts.P = 0.9
	}
	if opts.BootstrapIters <= 0 {
		opts.BootstrapIters = 300
	}
	know := core.DemographicKnowledge{
		Country:  opts.Country,
		Gender:   opts.Gender,
		AgeYears: opts.AgeYears,
		AgeSlack: opts.AgeSlack,
	}
	study, err := core.RunDemographicStudy(
		w.panel.Users,
		core.NewEngineSource(w.audience),
		know.Fn(),
		core.DemoStudyConfig{
			P:                   opts.P,
			BootstrapIters:      opts.BootstrapIters,
			Seed:                w.root.Derive("demoboost"),
			Parallelism:         w.parallelism,
			DisableColumnKernel: w.columnKernelOff,
		},
	)
	if err != nil {
		return DemographicBoost{}, err
	}
	return DemographicBoost{
		P:                study.P,
		InterestOnly:     study.InterestOnly.NP,
		WithDemographics: study.WithDemographics.NP,
		Saved:            study.Saved(),
	}, nil
}

// FloorUniqueness is one row of the floor-countermeasure estimator replay:
// the §4 random-interest uniqueness estimate with the platform's
// Potential-Reach floor raised to a countermeasure limit.
type FloorUniqueness struct {
	// Floor is the minimum Potential Reach the platform reports.
	Floor int64
	// Estimate is N_P under that floor (Strategy "R").
	Estimate UniquenessEstimate
}

// UniquenessUnderFloors replays the §4 estimator under each reach-floor
// countermeasure (§8.3 discusses 20 in the 2017 dataset, 100 with the
// workaround, 1000 today): every floor re-collects the random-selection
// samples with the raised floor and re-runs the full bootstrap estimator —
// the policy-evaluation workload whose cost the columnar bootstrap kernel
// amortizes. p defaults to 0.9 and bootstrapIters to 500 when non-positive.
// Results are deterministic per (world seed, floor).
func (w *World) UniquenessUnderFloors(floors []int64, p float64, bootstrapIters int) ([]FloorUniqueness, error) {
	if len(floors) == 0 {
		floors = []int64{20, 100, 1000}
	}
	if p <= 0 || p >= 1 {
		p = 0.9
	}
	if bootstrapIters <= 0 {
		bootstrapIters = 500
	}
	out := make([]FloorUniqueness, 0, len(floors))
	for _, floor := range floors {
		if floor <= 0 {
			return nil, fmt.Errorf("nanotarget: reach floor %d must be positive", floor)
		}
		src := core.NewEngineSource(w.audience)
		src.MinReach = floor
		seed := w.root.Derive(fmt.Sprintf("floorpolicy/%d", floor))
		samples, err := core.Collect(w.panel.Users, core.Random{}, src, core.CollectConfig{
			Seed:                seed.Derive("collect"),
			Parallelism:         w.parallelism,
			DisableColumnKernel: w.columnKernelOff,
		})
		if err != nil {
			return nil, fmt.Errorf("nanotarget: floor %d collection: %w", floor, err)
		}
		est, err := core.EstimateNP(samples, p, core.EstimateConfig{
			BootstrapIters: bootstrapIters,
			CILevel:        0.95,
			Rand:           seed.Derive("boot"),
			Parallelism:    w.parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("nanotarget: floor %d estimate: %w", floor, err)
		}
		out = append(out, FloorUniqueness{
			Floor: floor,
			Estimate: UniquenessEstimate{
				Strategy: est.Strategy,
				P:        est.P,
				NP:       est.NP,
				CILo:     est.CI.Lo,
				CIHi:     est.CI.Hi,
				R2:       est.R2,
			},
		})
	}
	return out, nil
}

// WriteTable1 renders the study in the paper's Table 1 layout.
func (s *UniquenessStudy) WriteTable1(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-8s %-6s %8s %18s %6s\n", "strategy", "P", "N_P", "95% CI", "R2"); err != nil {
		return err
	}
	for _, r := range s.rows {
		if _, err := fmt.Fprintf(w, "%-8s %-6.2f %8.2f (%7.2f, %7.2f) %6.3f\n",
			r.Strategy, r.P, r.NP, r.CILo, r.CIHi, r.R2); err != nil {
			return err
		}
	}
	return nil
}
